package particles

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols, cfg.Steps = 48, 48, 60
	cfg.CostPerParticle = 30e3 // cycles long enough for the 1s load monitor
	return cfg
}

func loadedSpec(n, node, cycle int) cluster.Spec {
	return cluster.Uniform(n).With(cluster.CycleEvent(node, cycle, +1))
}

func TestIntegrateBounces(t *testing.T) {
	cfg := Config{Rows: 10, Cols: 10, Dt: 1}
	pt := integrate(particle{x: 0.5, y: 0.5, vx: -1, vy: -1}, cfg)
	if pt.x != 0.5 || pt.y != 0.5 || pt.vx != 1 || pt.vy != 1 {
		t.Fatalf("bounce at origin wrong: %+v", pt)
	}
	pt = integrate(particle{x: 9.5, y: 9.5, vx: 1, vy: 1}, cfg)
	if pt.x != 9.5 || pt.y != 9.5 || pt.vx != -1 || pt.vy != -1 {
		t.Fatalf("bounce at far corner wrong: %+v", pt)
	}
	pt = integrate(particle{x: 5, y: 5, vx: 0.25, vy: -0.25}, cfg)
	if pt.x != 5.25 || pt.y != 4.75 {
		t.Fatalf("free flight wrong: %+v", pt)
	}
}

func TestParticleRowEncodingRoundTrip(t *testing.T) {
	s := matrix.NewSparse("P", 4, nil)
	s.SetWindow(0, 4)
	in := []particle{
		{pid: 7, x: 1.5, y: 0.25, vx: -0.5, vy: 0.125},
		{pid: 9, x: 2.5, y: 0.75, vx: 0.5, vy: -0.125},
	}
	for _, pt := range in {
		appendParticle(s, 0, pt)
	}
	out := readRow(s, 0)
	if len(out) != 2 {
		t.Fatalf("decoded %d particles", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("particle %d: %+v != %+v", i, out[i], in[i])
		}
	}
	// Survives a pack/unpack cycle (the redistribution path).
	d := matrix.NewSparse("D", 4, nil)
	d.SetWindow(0, 4)
	d.UnpackRow(0, s.PackRow(0))
	out = readRow(d, 0)
	if len(out) != 2 || out[1] != in[1] {
		t.Fatal("particles corrupted by pack/unpack")
	}
}

// TestConservationEveryStep runs the step function directly on 3 ranks and
// asserts the global particle count never changes.
func TestConservationEveryStep(t *testing.T) {
	cfg := testConfig()
	cfg.Steps = 25
	cfg.CostPerParticle = 100
	err := mpi.Run(cluster.New(cluster.Uniform(3)), func(c *mpi.Comm) error {
		rt := core.New(c, core.Config{Adapt: false})
		ps := rt.RegisterSparse("P", cfg.Rows)
		ph := rt.InitPhase(cfg.Rows)
		ph.AddAccess("P", drsd.ReadWrite, 1, 0)
		rt.Commit()
		lo, hi := ph.Bounds()
		seedParticles(ps, cfg, c.Size(), lo, hi)
		want := rt.AllreduceSum(float64(Census(ps, lo, hi)))
		for step := 0; step < cfg.Steps; step++ {
			rt.BeginCycle()
			stepOnce(rt, ps, cfg)
			rt.EndCycle()
			got := rt.AllreduceSum(float64(Census(ps, lo, hi)))
			if got != want {
				t.Errorf("step %d: %v particles, want %v", step, got, want)
			}
		}
		rt.Finalize()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicDedicated(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	a, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CheckInt != b.CheckInt {
		t.Fatalf("non-deterministic: %v vs %v", a.CheckInt, b.CheckInt)
	}
	if a.CheckInt == 0 {
		t.Fatal("degenerate checksum")
	}
}

func TestAdaptationPreservesParticlesExactly(t *testing.T) {
	cfg := testConfig()
	cfg.ExtraAllP0 = 2 // the §5.1 imbalance: P0 carries extra particles
	cfg.Core.Drop = core.DropNever
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Run(cluster.New(loadedSpec(4, 0, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Redists == 0 {
		t.Fatal("no redistribution; scenario broken")
	}
	if adp.CheckInt != ded.CheckInt {
		t.Fatalf("redistribution changed particle states: %v vs %v", adp.CheckInt, ded.CheckInt)
	}
}

func TestAdaptationBeatsNoAdaptation(t *testing.T) {
	cfg := testConfig()
	cfg.ExtraAllP0 = 2
	cfg.Core.Drop = core.DropNever
	spec := loadedSpec(4, 0, 5)
	adp, err := Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	noCfg := cfg
	noCfg.Core.Adapt = false
	non, err := Run(cluster.New(spec), noCfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Elapsed >= non.Elapsed {
		t.Fatalf("Dyn-MPI (%.3fs) not faster than no adaptation (%.3fs)", adp.Elapsed, non.Elapsed)
	}
}

func TestUnbalancedWorkloadRebalancesWithoutLoad(t *testing.T) {
	// Even with no competing process, the imbalanced particle population
	// means equal blocks are unbalanced. With a CP as trigger, Dyn-MPI's
	// per-iteration measurement shifts rows off the heavy node.
	cfg := testConfig()
	cfg.ExtraTopP0 = 6
	cfg.Core.Drop = core.DropNever
	adp, err := Run(cluster.New(loadedSpec(4, 0, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Redists == 0 {
		t.Fatal("no redistribution")
	}
}

func TestGracePeriodQualityShape(t *testing.T) {
	// The Figure 7 effect: iterations far below 10ms force wallclock
	// timing; GP=1 keeps spiked samples and mis-sizes the distribution,
	// GP=5's min filter recovers. GP=5 must not be slower.
	cfg := testConfig()
	cfg.Rows, cfg.Cols = 64, 48
	cfg.Steps = 90
	cfg.ExtraTopP0 = 4
	cfg.CostPerParticle = 3e3
	cfg.Core.Drop = core.DropNever
	spec := loadedSpec(4, 0, 5)
	g1 := cfg
	g1.Core.GracePeriod = 1
	g5 := cfg
	g5.Core.GracePeriod = 5
	r1, err := Run(cluster.New(spec), g1)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Run(cluster.New(spec), g5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CheckInt != r5.CheckInt {
		t.Fatalf("grace period changed results: %v vs %v", r1.CheckInt, r5.CheckInt)
	}
	if r5.Elapsed > r1.Elapsed*1.05 {
		t.Fatalf("GP=5 (%.3fs) clearly slower than GP=1 (%.3fs)", r5.Elapsed, r1.Elapsed)
	}
}

func TestCensus(t *testing.T) {
	s := matrix.NewSparse("P", 2, nil)
	s.SetWindow(0, 2)
	appendParticle(s, 0, particle{pid: 1})
	appendParticle(s, 1, particle{pid: 2})
	appendParticle(s, 1, particle{pid: 3})
	if Census(s, 0, 2) != 3 {
		t.Fatalf("census = %d", Census(s, 0, 2))
	}
}

func TestChecksumSensitivity(t *testing.T) {
	s := matrix.NewSparse("P", 1, nil)
	s.SetWindow(0, 1)
	appendParticle(s, 0, particle{pid: 1, x: 1})
	c1 := localChecksum(s, 0, 1)
	s.ClearRow(0)
	appendParticle(s, 0, particle{pid: 1, x: math.Nextafter(1, 2)})
	c2 := localChecksum(s, 0, 1)
	if c1 == c2 {
		t.Fatal("checksum insensitive to state changes")
	}
}
