// Package particles implements the paper's unbalanced application: a
// scaled-down MP3D-style particle simulation (§5.1, §5.4) on an R×C grid
// of cells. Particles advect deterministically and bounce off the domain
// walls; the per-row computation cost is proportional to the number of
// particles currently in the row, so iteration times are nonuniform and
// evolve — the case that forces Dyn-MPI to measure *per-iteration* times
// during the grace period rather than assume uniform work.
//
// The particle population is stored in a registered sparse array: row g
// holds its particles as runs of four (column=pid) elements (x, y, vx, vy),
// so redistribution moves particles together with their rows through the
// standard pack/unpack path. Migration between rows is explicit
// application-level communication with the owners of adjacent rows,
// exactly as an MPI particle code would do it.
//
// Iterations are deliberately far below the 10 ms /PROC granularity, which
// forces the runtime onto min-filtered wallclock timing — the mechanism
// Figure 7 evaluates via the grace-period length.
package particles

import (
	"math"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// Config parameterises a particle run.
type Config struct {
	// Rows, Cols give the cell grid (the paper uses 256x256).
	Rows, Cols int
	// Steps is the number of time steps (phase cycles; the paper uses 200).
	Steps int
	// BasePerCell is the initial particle count per cell (paper: 1-2).
	BasePerCell int
	// ExtraTopP0 adds this many particles per cell in the top half of the
	// rows initially owned by P0 (the Figure 7 "Part" parameter; the §5.1
	// experiment doubles P0's particles, i.e. ExtraTopP0 = 2*BasePerCell
	// over the whole block — use ExtraAllP0 for that).
	ExtraTopP0 int
	// ExtraAllP0 adds particles per cell across all of P0's initial rows
	// (the §5.1 "twice as many particles" configuration).
	ExtraAllP0 int
	// Dt is the integration step; |vy|*Dt must stay below one row.
	Dt float64
	// CostPerParticle is the modelled reference cost of one particle
	// update in nanoseconds.
	CostPerParticle float64
	// Seed drives particle initialisation.
	Seed uint64
	// Core configures the Dyn-MPI runtime.
	Core core.Config
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Rows: 128, Cols: 128, Steps: 80,
		BasePerCell: 1, Dt: 0.9,
		CostPerParticle: 400, Seed: 11,
		Core: core.DefaultConfig(),
	}
}

const migrateTag = 21

// particle is the in-flight representation during migration.
type particle struct {
	pid          int32
	x, y, vx, vy float64
}

// Run executes the particle simulation and returns the result. CheckInt is
// an order-independent integer checksum of the final particle states.
func Run(cl *cluster.Cluster, cfg Config) (apps.Result, error) {
	col := apps.NewCollector()
	err := mpi.Run(cl, func(c *mpi.Comm) error {
		rt := core.New(c, cfg.Core)
		ps := rt.RegisterSparse("P", cfg.Rows)
		ph := rt.InitPhase(cfg.Rows)
		ph.AddAccess("P", drsd.ReadWrite, 1, 0)
		rt.Commit()

		lo, hi := ph.Bounds()
		seedParticles(ps, cfg, c.Size(), lo, hi)

		for t := 0; t < cfg.Steps; t++ {
			if rt.BeginCycle() {
				stepOnce(rt, ps, cfg)
			}
			rt.EndCycle()
		}

		var check float64
		if rt.Participating() {
			lo, hi = ph.Bounds()
			check = rt.AllreduceSum(localChecksum(ps, lo, hi))
		} else {
			check = rt.AllreduceSum(0)
		}
		rt.Finalize()
		col.Report(rt, 0, int64(check))
		return nil
	})
	if err != nil {
		return apps.Result{}, err
	}
	return col.Result(cl.MaxN()), nil
}

// seedParticles populates this rank's initially owned rows. Particle
// initial state is a pure function of (pid), and pids are a pure function
// of (row, cell, slot), so every distribution seeds identically.
func seedParticles(ps *matrix.Sparse, cfg Config, worldSize, lo, hi int) {
	p0hi := (cfg.Rows + worldSize - 1) / worldSize // P0's initial block
	perCell := func(g int) int {
		n := cfg.BasePerCell
		if g < p0hi {
			n += cfg.ExtraAllP0
			if g < p0hi/2 {
				n += cfg.ExtraTopP0
			}
		}
		return n
	}
	for g := lo; g < hi; g++ {
		for cell := 0; cell < cfg.Cols; cell++ {
			for s := 0; s < perCell(g); s++ {
				pid := int32((g*cfg.Cols+cell)*64 + s)
				rng := vclock.NewPRNG(cfg.Seed).Fork(uint64(pid) + 1)
				pt := particle{
					pid: pid,
					x:   float64(cell) + rng.Float64(),
					y:   float64(g) + rng.Float64(),
					vx:  (rng.Float64() - 0.5) * 2,
					vy:  (rng.Float64() - 0.5), // |vy| < 0.5 rows per unit time
				}
				appendParticle(ps, g, pt)
			}
		}
	}
}

func appendParticle(ps *matrix.Sparse, g int, pt particle) {
	ps.Append(g, pt.pid, pt.x)
	ps.Append(g, pt.pid, pt.y)
	ps.Append(g, pt.pid, pt.vx)
	ps.Append(g, pt.pid, pt.vy)
}

// readRow decodes a row's particles (groups of four elements).
func readRow(ps *matrix.Sparse, g int) []particle {
	var out []particle
	e := ps.RowHead(g)
	for e != nil {
		pt := particle{pid: e.Col, x: e.Val}
		e = e.Next()
		pt.y = e.Val
		e = e.Next()
		pt.vx = e.Val
		e = e.Next()
		pt.vy = e.Val
		e = e.Next()
		out = append(out, pt)
	}
	return out
}

// integrate advances one particle, bouncing off the domain walls. It is a
// pure function of the particle's own state, so results are bit-identical
// regardless of which rank computes it.
func integrate(pt particle, cfg Config) particle {
	pt.x += pt.vx * cfg.Dt
	pt.y += pt.vy * cfg.Dt
	w, h := float64(cfg.Cols), float64(cfg.Rows)
	if pt.x < 0 {
		pt.x, pt.vx = -pt.x, -pt.vx
	}
	if pt.x >= w {
		pt.x, pt.vx = 2*w-pt.x, -pt.vx
	}
	if pt.y < 0 {
		pt.y, pt.vy = -pt.y, -pt.vy
	}
	if pt.y >= h {
		pt.y, pt.vy = 2*h-pt.y, -pt.vy
	}
	return pt
}

// step advances every owned particle one time step, migrating particles
// that cross row boundaries: local moves are reinserted directly; emigrants
// travel to the owners of the adjacent rows (one exchange per neighbour per
// step, possibly empty — both sides derive the pairing from the current
// distribution, so matching is deterministic).
func stepOnce(rt *core.Runtime, ps *matrix.Sparse, cfg Config) {
	me := rt.Comm().Rank()
	lo, hi := rt.Dist().RangeOf(me)
	if lo >= hi {
		return
	}
	var emUp, emDown []particle
	type move struct {
		g  int
		pt particle
	}
	var local []move
	for g := lo; g < hi; g++ {
		pts := readRow(ps, g)
		ps.ClearRow(g)
		for _, pt := range pts {
			pt = integrate(pt, cfg)
			ng := int(math.Floor(pt.y))
			switch {
			case ng == g:
				appendParticle(ps, g, pt)
			case ng < lo:
				emUp = append(emUp, pt)
			case ng >= hi:
				emDown = append(emDown, pt)
			default:
				local = append(local, move{g: ng, pt: pt})
			}
		}
		rt.ComputeIter(g, vclock.Duration(float64(len(pts))*cfg.CostPerParticle))
	}
	for _, m := range local {
		appendParticle(ps, m.g, m.pt)
	}
	// Exchange emigrants with the adjacent block owners.
	comm := rt.Comm()
	up, down := -1, -1
	if lo > 0 {
		up = rt.Dist().Owner(lo - 1)
	}
	if hi < cfg.Rows {
		down = rt.Dist().Owner(hi)
	}
	// Both receives are posted before either send, so the exchange is
	// deadlock-free by construction — it no longer relies on eager
	// buffering absorbing both outgoing messages — and the two directions
	// overlap. The injection charges and arrival stamps are identical to
	// the former Send/Send/Recv/Recv sequence, so virtual timing is
	// unchanged.
	var recvUp, recvDown *mpi.Request
	var sends [2]*mpi.Request
	if up >= 0 {
		recvUp = comm.Irecv(up, migrateTag)
	}
	if down >= 0 {
		recvDown = comm.Irecv(down, migrateTag)
	}
	if up >= 0 {
		sends[0] = comm.Isend(up, migrateTag, emUp, 40*len(emUp)+8)
	}
	if down >= 0 {
		sends[1] = comm.Isend(down, migrateTag, emDown, 40*len(emDown)+8)
	}
	insert := func(pts []particle) {
		for _, pt := range pts {
			g := int(math.Floor(pt.y))
			appendParticle(ps, g, pt)
		}
	}
	if recvUp != nil {
		p, _ := comm.Wait(recvUp)
		insert(p.([]particle))
	}
	if recvDown != nil {
		p, _ := comm.Wait(recvDown)
		insert(p.([]particle))
	}
	comm.Waitall(sends[:])
}

// localChecksum folds every owned particle into an order-independent
// integer (kept below 2^30 per particle so the float64 allreduce is exact
// up to ~2^53 total).
func localChecksum(ps *matrix.Sparse, lo, hi int) float64 {
	var sum int64
	for g := lo; g < hi; g++ {
		for _, pt := range readRow(ps, g) {
			h := uint64(pt.pid) * 2654435761
			h ^= math.Float64bits(pt.x) * 31
			h ^= math.Float64bits(pt.y) * 37
			h ^= math.Float64bits(pt.vx) * 41
			h ^= math.Float64bits(pt.vy) * 43
			sum += int64(h & (1<<30 - 1))
		}
	}
	return float64(sum)
}

// Census reports the total particle count owned by rows [lo,hi) — used by
// tests to assert conservation.
func Census(ps *matrix.Sparse, lo, hi int) int {
	n := 0
	for g := lo; g < hi; g++ {
		n += ps.RowLen(g) / 4
	}
	return n
}
