package cg

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.N, cfg.Iters = 400, 50
	cfg.CostPerNnz = 25e3 // keep cycles long enough for the 1s load monitor
	cfg.CostPerVecElem = 2e3
	return cfg
}

func loadedSpec(n, node, cycle int) cluster.Spec {
	return cluster.Uniform(n).With(cluster.CycleEvent(node, cycle, +1))
}

func TestRowPatternDeterministicAndValid(t *testing.T) {
	c1, v1 := rowPattern(7, 5, 100, 8)
	c2, v2 := rowPattern(7, 5, 100, 8)
	if len(c1) != 8 || len(v1) != 8 {
		t.Fatalf("pattern size %d", len(c1))
	}
	for i := range c1 {
		if c1[i] != c2[i] || v1[i] != v2[i] {
			t.Fatal("pattern not deterministic")
		}
		if c1[i] == 5 {
			t.Fatal("diagonal duplicated in off-diagonal pattern")
		}
		if c1[i] < 0 || int(c1[i]) >= 100 {
			t.Fatal("column out of range")
		}
	}
	seen := map[int32]bool{}
	for _, c := range c1 {
		if seen[c] {
			t.Fatal("duplicate column")
		}
		seen[c] = true
	}
}

func TestResidualDecreases(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	res, err := Run(cluster.New(cluster.Uniform(2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initial rho = n; a diagonally dominant system must converge fast.
	if res.Checksum >= float64(cfg.N)*1e-6 {
		t.Fatalf("residual %v did not decrease from %v", res.Checksum, float64(cfg.N))
	}
}

func TestDeterministicDedicated(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Adapt = false
	a, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cluster.New(cluster.Uniform(4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("non-deterministic: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestAdaptationPreservesResidualBitExactly(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(4)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Run(cluster.New(loadedSpec(4, 1, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Redists == 0 {
		t.Fatal("no redistribution; scenario broken")
	}
	if adp.Checksum != ded.Checksum {
		t.Fatalf("sparse redistribution changed CG residual: %v vs %v", adp.Checksum, ded.Checksum)
	}
}

func TestAdaptationBeatsNoAdaptation(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropNever
	spec := loadedSpec(4, 1, 5)
	adp, err := Run(cluster.New(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	noCfg := cfg
	noCfg.Core.Adapt = false
	non, err := Run(cluster.New(spec), noCfg)
	if err != nil {
		t.Fatal(err)
	}
	if adp.Elapsed >= non.Elapsed {
		t.Fatalf("Dyn-MPI (%.3fs) not faster than no adaptation (%.3fs)", adp.Elapsed, non.Elapsed)
	}
}

func TestDropPreservesResidual(t *testing.T) {
	cfg := testConfig()
	cfg.Core.Drop = core.DropAlways
	dedCfg := cfg
	dedCfg.Core.Adapt = false
	ded, err := Run(cluster.New(cluster.Uniform(3)), dedCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cluster.New(loadedSpec(3, 0, 5)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[0].Removed {
		t.Fatal("loaded node 0 not removed")
	}
	if res.Checksum != ded.Checksum {
		t.Fatalf("removal changed CG residual: %v vs %v", res.Checksum, ded.Checksum)
	}
}
