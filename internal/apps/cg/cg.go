// Package cg implements the paper's sparse application: a conjugate
// gradient solver in the style of NAS CG (§5.1) over a synthetic random
// sparse system. The matrix rows are block-distributed and registered with
// the runtime as a sparse array in the vector-of-lists format, so
// redistribution moves both data and metadata (§4.1.2).
//
// Substitution note (see DESIGN.md): the NAS input is replaced by a
// deterministic, diagonally dominant random sparse system with the same
// density (~13 nonzeros per row for class-A-like runs). The iteration
// vectors are kept replicated so that dot products are computed in a fixed
// order on every rank, making the numerical results bit-identical across
// distributions — only the matrix (the dominant data) is distributed, and
// the per-iteration communication (assembling q = A·p) matches the
// row-distributed SpMV volume of the original.
package cg

import (
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// Config parameterises a CG run.
type Config struct {
	// N is the system size (the paper uses 14000).
	N int
	// NnzPerRow is the number of off-diagonal entries per row.
	NnzPerRow int
	// Iters is the number of CG iterations (phase cycles).
	Iters int
	// CostPerNnz is the modelled reference cost of one multiply-add in the
	// SpMV, in nanoseconds.
	CostPerNnz float64
	// CostPerVecElem is the modelled per-element cost of the iteration's
	// vector operations, in nanoseconds.
	CostPerVecElem float64
	// Seed drives the deterministic matrix generator.
	Seed uint64
	// Core configures the Dyn-MPI runtime.
	Core core.Config
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		N: 2000, NnzPerRow: 12, Iters: 60,
		CostPerNnz: 100, CostPerVecElem: 60,
		Seed: 7, Core: core.DefaultConfig(),
	}
}

// rowPattern returns the deterministic off-diagonal column ids and values
// of row g. All ranks generate identical rows.
func rowPattern(seed uint64, g, n, nnz int) ([]int32, []float64) {
	rng := vclock.NewPRNG(seed).Fork(uint64(g) + 1)
	cols := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	seen := map[int32]bool{int32(g): true}
	for len(cols) < nnz {
		c := int32(rng.Intn(n))
		if seen[c] {
			continue
		}
		seen[c] = true
		cols = append(cols, c)
		vals = append(vals, rng.Float64()*0.1)
	}
	return cols, vals
}

// Run executes the CG solver on the cluster and returns the result. The
// checksum is the final residual norm, bit-identical across distributions.
func Run(cl *cluster.Cluster, cfg Config) (apps.Result, error) {
	col := apps.NewCollector()
	err := mpi.Run(cl, func(c *mpi.Comm) error {
		rt := core.New(c, cfg.Core)
		a := rt.RegisterSparse("A", cfg.N)
		ph := rt.InitPhase(cfg.N)
		ph.AddAccess("A", drsd.Read, 1, 0)
		rt.Commit()

		lo, hi := ph.Bounds()
		for g := lo; g < hi; g++ {
			cols, vals := rowPattern(cfg.Seed, g, cfg.N, cfg.NnzPerRow)
			diag := 1.0
			for _, v := range vals {
				diag += v // diagonal dominance
			}
			a.Append(g, int32(g), diag)
			for i := range cols {
				a.Append(g, cols[i], vals[i])
			}
		}

		// Replicated iteration vectors (deterministic dot products).
		b := make([]float64, cfg.N)
		for i := range b {
			b[i] = 1.0
		}
		x := make([]float64, cfg.N)
		r := append([]float64(nil), b...)
		p := append([]float64(nil), b...)
		rho := dot(r, r)

		vecCost := func(owned int) vclock.Duration {
			return vclock.Duration(float64(owned) * cfg.CostPerVecElem * 8)
		}
		var resNorm float64
		// One reduction buffer for the whole solve: each iteration zeroes
		// it, deposits the owned partial products, and reduces in place.
		q := make([]float64, cfg.N)
		for t := 0; t < cfg.Iters; t++ {
			qContrib := q
			clear(qContrib)
			if rt.BeginCycle() {
				lo, hi = ph.Bounds()
				for g := lo; g < hi; g++ {
					s := 0.0
					for e := a.RowHead(g); e != nil; e = e.Next() {
						s += e.Val * p[e.Col]
					}
					qContrib[g] = s
					rt.ComputeIter(g, vclock.Duration(float64(a.RowLen(g))*cfg.CostPerNnz))
				}
				rt.Compute(vecCost(hi - lo))
			}
			// Assemble the full q on every rank (the SpMV exchange).
			rt.AllreduceF64sInto(qContrib, mpi.Sum)
			// Replicated vector updates: identical arithmetic everywhere.
			alpha := rho / dot(p, q)
			for i := range x {
				x[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
			rhoNew := dot(r, r)
			beta := rhoNew / rho
			rho = rhoNew
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
			resNorm = rho
			rt.EndCycle()
		}
		rt.Finalize()
		col.Report(rt, resNorm, 0)
		return nil
	})
	if err != nil {
		return apps.Result{}, err
	}
	return col.Result(cl.MaxN()), nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
