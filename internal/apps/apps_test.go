package apps

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/drsd"
	"repro/internal/mpi"
	"repro/internal/vclock"
)

// haloWorld builds a 3-rank world with one dense stencil array and runs fn.
func haloWorld(t *testing.T, n int, fn func(rt *core.Runtime, rows [][]float64) error) {
	t.Helper()
	err := mpi.Run(cluster.New(cluster.Uniform(3)), func(c *mpi.Comm) error {
		rt := core.New(c, core.Config{Adapt: false})
		d := rt.RegisterDense("A", n, 2)
		ph := rt.InitPhase(n)
		ph.AddAccess("A", drsd.ReadWrite, 1, 0)
		ph.AddAccess("A", drsd.Read, 1, -1)
		ph.AddAccess("A", drsd.Read, 1, +1)
		rt.Commit()
		d.Fill(func(g, j int) float64 { return float64(g*10 + j) })
		rows := make([][]float64, n)
		for g := d.Lo(); g < d.Hi(); g++ {
			rows[g] = d.Row(g)
		}
		err := fn(rt, rows)
		rt.Finalize()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaloExchangeDeliversNeighbourRows(t *testing.T) {
	const n = 12
	haloWorld(t, n, func(rt *core.Runtime, rows [][]float64) error {
		me := rt.Comm().Rank()
		lo, hi := rt.Dist().RangeOf(me)
		// Make each rank's boundary rows identifiable, then exchange.
		got := map[int][]float64{}
		HaloExchange(rt, 5, n,
			func(g int) []float64 { return rows[g] },
			func(g int, row []float64) { got[g] = row })
		if lo > 0 {
			want := float64((lo - 1) * 10)
			if got[lo-1] == nil || got[lo-1][0] != want {
				return fmt.Errorf("rank %d ghost %d = %v, want %v", me, lo-1, got[lo-1], want)
			}
		}
		if hi < n {
			want := float64(hi * 10)
			if got[hi] == nil || got[hi][0] != want {
				return fmt.Errorf("rank %d ghost %d = %v, want %v", me, hi, got[hi], want)
			}
		}
		return nil
	})
}

func TestHaloExchangeSnapshotsPayload(t *testing.T) {
	// Mutating the boundary row immediately after the exchange must not
	// corrupt what the receiver got (the SOR half-phase hazard).
	const n = 6
	haloWorld(t, n, func(rt *core.Runtime, rows [][]float64) error {
		me := rt.Comm().Rank()
		lo, hi := rt.Dist().RangeOf(me)
		var ghost []float64
		HaloExchange(rt, 6, n,
			func(g int) []float64 { return rows[g] },
			func(g int, row []float64) {
				if g == lo-1 {
					ghost = row
				}
			})
		// Everyone trashes their boundary rows after sending.
		rows[lo][0] = -999
		rows[hi-1][0] = -999
		rt.Barrier()
		if me > 0 && ghost[0] != float64((lo-1)*10) {
			return fmt.Errorf("ghost aliased sender memory: %v", ghost[0])
		}
		return nil
	})
}

func TestOrderedChecksumDistributionIndependent(t *testing.T) {
	// Two different block layouts of the same data must checksum
	// identically, bit for bit.
	sum := func(counts []int) float64 {
		const n = 9
		var out float64
		err := mpi.Run(cluster.New(cluster.Uniform(3)), func(c *mpi.Comm) error {
			rt := core.New(c, core.Config{Adapt: false})
			rt.RegisterDense("X", n, 1)
			ph := rt.InitPhase(n)
			ph.AddAccess("X", drsd.ReadWrite, 1, 0)
			rt.Commit()
			// Simulate an arbitrary layout by checksumming a slice of the
			// global index space directly.
			lo := 0
			for r := 0; r < c.Rank(); r++ {
				lo += counts[r]
			}
			hi := lo + counts[c.Rank()]
			s := OrderedChecksum(rt, n, lo, hi, func(g int) float64 {
				return 0.1 * float64(g+1) // values with non-trivial rounding
			})
			if c.Rank() == 0 {
				out = s
			}
			rt.Finalize()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := sum([]int{3, 3, 3})
	b := sum([]int{1, 7, 1})
	if a != b {
		t.Fatalf("checksums differ across layouts: %v vs %v", a, b)
	}
}

func TestCollectorAggregation(t *testing.T) {
	col := NewCollector()
	err := mpi.Run(cluster.New(cluster.Uniform(2)), func(c *mpi.Comm) error {
		rt := core.New(c, core.Config{Adapt: false})
		rt.RegisterDense("X", 4, 1)
		ph := rt.InitPhase(4)
		ph.AddAccess("X", drsd.ReadWrite, 1, 0)
		rt.Commit()
		rt.BeginCycle()
		lo, hi := ph.Bounds()
		for g := lo; g < hi; g++ {
			rt.ComputeIter(g, vclock.Duration(10*vclock.Millisecond))
		}
		rt.EndCycle()
		rt.Finalize()
		col.Report(rt, 3.5, 42)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := col.Result(2)
	if res.Checksum != 3.5 || res.CheckInt != 42 {
		t.Fatalf("result %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if len(res.Stats) != 2 || res.Stats[1].Rank != 1 {
		t.Fatalf("stats %+v", res.Stats)
	}
}
