// Package repro is a production-quality Go reproduction of "Dyn-MPI:
// Supporting MPI on Non Dedicated Clusters" (Weatherly, Lowenthal,
// Nakazawa, Lowenthal — SC 2003).
//
// The public API lives in repro/dynmpi; the experiment CLI in
// cmd/dynexp; the per-figure reproduction details in DESIGN.md and
// EXPERIMENTS.md. Benchmarks in bench_test.go regenerate a scaled-down
// cell of every table and figure in the paper's evaluation.
package repro
